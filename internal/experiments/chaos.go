package experiments

import (
	"fmt"
	"math"
	"strings"

	"demeter/internal/balloon"
	"demeter/internal/core"
	"demeter/internal/engine"
	"demeter/internal/fault"
	"demeter/internal/health"
	"demeter/internal/hypervisor"
	"demeter/internal/obs"
	"demeter/internal/sim"
	"demeter/internal/tmm"
)

// ChaosConfig parameterizes a chaos run: a seed-driven fault schedule is
// applied at each rung of an intensity ladder while a full Demeter stack
// (double balloons, QoS rebalancer, policy-driven relocation) runs the
// configured workloads, and end-of-run invariants assert that no layer
// leaked or wedged. The zero value means "the default scenario"; the
// explorer (internal/explore) mutates every field, so the struct is the
// scenario-search space and serializes to JSON for frozen corpus cases.
type ChaosConfig struct {
	// Seed drives the fault injector; the same seed and schedule always
	// produce the same run (and the same report, bit for bit).
	Seed uint64 `json:"seed"`
	// Schedule maps fault points to base rates; nil means every
	// registered point at its default rate.
	Schedule fault.Schedule `json:"schedule"`
	// Ladder lists the schedule multipliers to run, one rung each. Rung 0
	// must be fault-free (multiplier 0) — it is the degradation
	// baseline. Nil means {0, 1, 4}.
	Ladder []float64 `json:"ladder"`
	// VMs overrides the cluster size (0 = the scale's s.VMs).
	VMs int `json:"vms"`
	// Floor is the minimum acceptable throughput at any rung as a
	// fraction of the fault-free baseline (0 = 0.5).
	Floor float64 `json:"floor"`
	// Design selects the per-VM TMM policy ("" = "demeter"); any entry of
	// ChaosDesigns is valid.
	Design string `json:"design,omitempty"`
	// Tier selects the slow medium: "pmem" (default) or "cxl".
	Tier string `json:"tier,omitempty"`
	// Workloads names the per-VM workloads, cycled over VM index; any
	// name Scale.NewApp accepts plus "gups". Nil means {"gups"}.
	Workloads []string `json:"workloads,omitempty"`
	// Overcommit shrinks the host FMEM pool: the pool is the per-VM sum
	// divided by this ratio, so 1.25 means the fast tier can back only
	// 80% of what the guests were promised. Values <= 1 mean fully
	// backed (the default).
	Overcommit float64 `json:"overcommit,omitempty"`
	// Health arms the per-VM delegation health monitor (meaningful for
	// the demeter design — other designs have no guest delegate to
	// watch): heartbeat checks, degraded-mode failover, recovery
	// handback. All three health fields are omitempty so pre-existing
	// frozen scenarios keep their hashes.
	Health bool `json:"health,omitempty"`
	// HeartbeatEpochs is the monitor's check period in classification
	// epochs (0 with Health = 4). Only meaningful with Health.
	HeartbeatEpochs int `json:"heartbeat_epochs,omitempty"`
	// NoFailover keeps the monitor detect-and-journal only: on DEGRADED
	// the wedged delegate is detached but no host-side fallback attaches,
	// so tiering freezes — the baseline the degraded experiment compares
	// failover against. Only meaningful with Health.
	NoFailover bool `json:"no_failover,omitempty"`
}

// ChaosDesigns lists the policies a chaos scenario may select. tpp-h is
// absent: hypervisor-managed guests need a different node layout than the
// double-balloon provisioning path builds.
var ChaosDesigns = []string{"demeter", "tpp", "memtis", "nomad", "vtmm"}

// ChaosWorkloads lists the workload names a chaos scenario may mix.
var ChaosWorkloads = append([]string{"gups"}, Apps...)

// DefaultChaosConfig returns the standard ladder at seed 1.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{Seed: 1, Ladder: []float64{0, 1, 4}, Floor: 0.5}
}

// Normalized returns the config with every zero-valued field replaced by
// its default for scale s. The result is self-describing — freezing it
// pins the full scenario even if defaults change later.
func (cfg ChaosConfig) Normalized(s Scale) ChaosConfig {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Schedule == nil {
		cfg.Schedule = fault.DefaultSchedule()
	}
	if cfg.Ladder == nil {
		cfg.Ladder = []float64{0, 1, 4}
	}
	if cfg.VMs == 0 {
		cfg.VMs = s.VMs
	}
	if cfg.Floor == 0 {
		cfg.Floor = 0.5
	}
	if cfg.Design == "" {
		cfg.Design = "demeter"
	}
	if cfg.Tier == "" {
		cfg.Tier = "pmem"
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = []string{"gups"}
	}
	if cfg.Overcommit < 1 {
		cfg.Overcommit = 1
	}
	if cfg.Health && cfg.HeartbeatEpochs == 0 {
		cfg.HeartbeatEpochs = 4
	}
	return cfg
}

// Validate rejects configs outside the scenario space: unknown designs,
// tiers, workloads or fault points, bad rates, an empty ladder, a faulty
// baseline rung, or a non-positive VM count.
func (cfg ChaosConfig) Validate() error {
	if err := cfg.Schedule.Validate(); err != nil {
		return err
	}
	if cfg.VMs < 1 {
		return fmt.Errorf("chaos: VMs must be >= 1, got %d", cfg.VMs)
	}
	if len(cfg.Ladder) == 0 {
		return fmt.Errorf("chaos: ladder must have at least one rung")
	}
	if cfg.Ladder[0] != 0 {
		return fmt.Errorf("chaos: ladder rung 0 must be fault-free (multiplier 0), got %g", cfg.Ladder[0])
	}
	for _, m := range cfg.Ladder {
		if math.IsNaN(m) || m < 0 {
			return fmt.Errorf("chaos: bad ladder multiplier %g", m)
		}
	}
	if math.IsNaN(cfg.Floor) || cfg.Floor < 0 || cfg.Floor > 1 {
		return fmt.Errorf("chaos: floor %g outside [0, 1]", cfg.Floor)
	}
	if !containsString(ChaosDesigns, cfg.Design) {
		return fmt.Errorf("chaos: unknown design %q", cfg.Design)
	}
	if cfg.Tier != "pmem" && cfg.Tier != "cxl" {
		return fmt.Errorf("chaos: unknown tier %q", cfg.Tier)
	}
	for _, w := range cfg.Workloads {
		if !containsString(ChaosWorkloads, w) {
			return fmt.Errorf("chaos: unknown workload %q", w)
		}
	}
	if math.IsNaN(cfg.Overcommit) || cfg.Overcommit < 1 || cfg.Overcommit > 4 {
		return fmt.Errorf("chaos: overcommit %g outside [1, 4]", cfg.Overcommit)
	}
	if !cfg.Health && (cfg.HeartbeatEpochs != 0 || cfg.NoFailover) {
		return fmt.Errorf("chaos: heartbeat/failover knobs set without health monitoring")
	}
	if cfg.HeartbeatEpochs < 0 || cfg.HeartbeatEpochs > 64 {
		return fmt.Errorf("chaos: heartbeat %d epochs outside [1, 64]", cfg.HeartbeatEpochs)
	}
	return nil
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// RungResult is one ladder step's structured outcome. Report carries the
// rendered per-rung text block (deterministic for a given seed and
// config); Snapshot carries the rung's end-of-run metrics so callers (the
// explorer's fitness function) can score outlier behavior that violates
// no invariant.
type RungResult struct {
	Mult       float64
	Throughput float64
	Violations []string
	Report     string
	Snapshot   obs.Snapshot
}

// RunChaosLadder runs every rung of cfg's ladder as an independent leaf
// run under the worker pool and derives the cross-rung floor check. It is
// the per-candidate entry point the explorer calls: structured results
// instead of one rendered report. The error is non-nil only for invalid
// configs; invariant violations are data, not errors, at this layer.
func RunChaosLadder(s Scale, cfg ChaosConfig) ([]RungResult, error) {
	cfg = cfg.Normalized(s)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Each rung is an independent leaf run: its own engine and its own
	// injector seeded identically, so the fault stream at rung i does not
	// depend on which rungs ran before (or concurrently with) it. The
	// baseline ratio and floor check are derived after collection.
	rungs := runIndexed(len(cfg.Ladder), func(i int) RungResult {
		return runChaosRung(s, cfg, cfg.Ladder[i])
	})
	for i := range rungs {
		r := &rungs[i]
		if i > 0 && rungs[0].Throughput > 0 {
			ratio := r.Throughput / rungs[0].Throughput
			r.Report += fmt.Sprintf("  throughput vs baseline: %.2fx\n", ratio)
			if ratio < cfg.Floor {
				r.Violations = append(r.Violations, fmt.Sprintf("throughput %.2fx below floor %.2fx", ratio, cfg.Floor))
			}
		}
		if len(r.Violations) == 0 {
			r.Report += "  invariants: OK\n"
		} else {
			for _, e := range r.Violations {
				r.Report += fmt.Sprintf("  INVARIANT VIOLATED: %s\n", e)
			}
		}
	}
	return rungs, nil
}

// ChaosReport assembles the ladder results into the canonical chaos
// report. The error is non-nil when any invariant was violated at any
// rung; the report always includes the full per-layer accounting. cfg
// must be the normalized config the rungs were run with.
func ChaosReport(cfg ChaosConfig, rungs []RungResult) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: %d VMs (%s, tier %s, workloads %s, overcommit %g) under schedule %q, seed %d\n\n",
		cfg.VMs, cfg.Design, cfg.Tier, strings.Join(cfg.Workloads, "+"), cfg.Overcommit,
		cfg.Schedule.String(), cfg.Seed)
	var failures []string
	for _, r := range rungs {
		b.WriteString(r.Report)
		b.WriteByte('\n')
		for _, e := range r.Violations {
			failures = append(failures, fmt.Sprintf("x%g: %s", r.Mult, e))
		}
	}
	if len(failures) > 0 {
		return b.String(), fmt.Errorf("chaos: %d invariant violation(s): %s", len(failures), strings.Join(failures, "; "))
	}
	b.WriteString("All invariants held at every rung: no frame leaks, no lost balloon\n" +
		"pages, GPT/EPT/TLB consistent, throughput within the degradation floor.\n")
	return b.String(), nil
}

// RunChaos runs the fault-injection ladder and returns a deterministic
// report. The error is non-nil when the config is invalid or when any
// invariant was violated at any rung; in the latter case the report still
// includes the full per-layer accounting.
func RunChaos(s Scale, cfg ChaosConfig) (string, error) {
	cfg = cfg.Normalized(s)
	rungs, err := RunChaosLadder(s, cfg)
	if err != nil {
		return "", err
	}
	return ChaosReport(cfg, rungs)
}

// runChaosRung runs one ladder step: a fresh cluster with the schedule
// scaled by mult, full Demeter provisioning plus the configured policy,
// then the invariant battery. A panic anywhere in the run (a scenario
// driving a layer into an unhandled state) is converted into a violation
// instead of crashing the whole campaign — a deterministic crash is the
// most valuable find an explorer can freeze.
func runChaosRung(s Scale, cfg ChaosConfig, mult float64) (r RungResult) {
	r.Mult = mult
	defer func() {
		if p := recover(); p != nil {
			r.Violations = append(r.Violations, fmt.Sprintf("panic: %v", p))
			r.Report = fmt.Sprintf("rung x%g:\n  PANIC: %v\n", mult, p)
		}
	}()
	eng := sim.NewEngine()
	n := cfg.VMs

	inj := fault.NewInjector(cfg.Seed)
	cfg.Schedule.Scale(mult).Apply(inj)

	hostFMEM := s.VMFMEM * uint64(n)
	if cfg.Overcommit > 1 {
		hostFMEM = uint64(float64(hostFMEM) / cfg.Overcommit)
		if hostFMEM == 0 {
			hostFMEM = 1
		}
	}
	m := hypervisor.NewMachine(eng, hostTopology(cfg.Tier, hostFMEM, s.VMSMEM*uint64(n)))
	m.Fault = inj // before NewVM/NewDouble so every layer inherits it
	if s.ScanPTECost > 0 {
		m.Cost.ScanPTECost = s.ScanPTECost
	}
	o := obs.New(0)
	m.AttachObs(o) // before NewVM/NewDouble so publish hooks register
	// Journal each fired fault. OnFire runs after the draw, so the fault
	// stream is identical with or without observability attached.
	inj.OnFire = func(p fault.Point, magnitude float64) {
		o.Journal.Append(obs.Event{
			At: eng.Now(), Type: obs.EvFault, VM: -1,
			Note: string(p), Arg1: math.Float64bits(magnitude),
		})
	}

	// Elastic configuration: guest nodes at full capacity, the double
	// balloon carves the actual provision (figure 6's demeter scheme).
	var vms []*hypervisor.VM
	var doubles []*balloon.Double
	pending := n
	for i := 0; i < n; i++ {
		total := s.VMFMEM + s.VMSMEM
		vm, err := m.NewVM(hypervisor.VMConfig{
			VCPUs: 4, GuestFMEM: total, GuestSMEM: total,
			FMEMBacking: 0, SMEMBacking: 1,
		})
		if err != nil {
			panic(err)
		}
		d := balloon.NewDouble(eng, vm)
		d.SetProvision(s.VMFMEM, s.VMSMEM, func() { pending-- })
		vms = append(vms, vm)
		doubles = append(doubles, d)
	}
	// Under overcommit the double balloons can retry reclaim forever on a
	// too-small FMEM pool; bound the settling phase in simulated time so a
	// wedged provision becomes a reported violation, not a livelock.
	deadline := eng.Now() + 4*s.Horizon
	for pending > 0 {
		if !eng.Step() {
			r.Violations = append(r.Violations, "provisioning never settled (balloon watchdog failed to fire)")
			r.Report = fmt.Sprintf("rung x%g:\n", mult)
			return r
		}
		if eng.Now() > deadline {
			r.Violations = append(r.Violations, fmt.Sprintf("provisioning did not settle within 4x horizon %v (%d VM(s) pending)", s.Horizon, pending))
			r.Report = fmt.Sprintf("rung x%g:\n", mult)
			return r
		}
	}

	for _, d := range doubles {
		d.StartStats(2 * s.EpochPeriod)
	}
	reb := balloon.NewRebalancer(eng, doubles, nil)
	reb.Budget = s.VMFMEM * uint64(n)
	reb.MinPerVM = s.VMFMEM / 4
	reb.SMEMPerVM = s.VMSMEM
	reb.Start(8 * s.EpochPeriod)

	var xs []*engine.Executor
	var policies []Policy
	var ds []*core.Demeter
	for i, vm := range vms {
		// The executor's workload Setup must run before the policy
		// attaches: the range tree snapshots the process VMAs at attach.
		wl := s.NewApp(cfg.Workloads[i%len(cfg.Workloads)], uint64(i)+1)
		xs = append(xs, engine.NewExecutor(eng, vm, wl))
		pol := s.NewPolicy(cfg.Design)
		pol.Attach(eng, vm)
		policies = append(policies, pol)
		if d, ok := pol.(*core.Demeter); ok {
			ds = append(ds, d)
		}
	}

	// Delegation health monitoring: one monitor per delegated VM,
	// checking every HeartbeatEpochs epochs. Non-demeter designs have no
	// guest delegate, so Health is a no-op for them by construction.
	var mons []*health.Monitor
	if cfg.Health {
		for i, pol := range policies {
			d, ok := pol.(*core.Demeter)
			if !ok {
				continue
			}
			hcfg := health.DefaultConfig(s.EpochPeriod)
			hcfg.CheckPeriod = sim.Duration(cfg.HeartbeatEpochs) * s.EpochPeriod
			hcfg.StaleAfter = 4 * hcfg.CheckPeriod
			hcfg.ProbeBackoff = sim.Backoff{Base: hcfg.CheckPeriod, Max: 16 * hcfg.CheckPeriod}
			hcfg.Failover = !cfg.NoFailover
			hcfg.Fallback = tmm.DefaultFallbackConfig(s.ScanPeriod, s.ScanBatch, s.MigrationBatch)
			mon := health.NewMonitor(hcfg, d, doubles[i])
			mon.AttachExecutor(xs[i])
			mon.Start(eng, vms[i])
			mons = append(mons, mon)
		}
	}

	// Double the horizon: faulty rungs legitimately run slower, and the
	// degradation floor (not the horizon) is the performance assertion.
	finished := engine.RunAll(eng, 2*s.Horizon, xs...)
	reb.Stop()
	// Monitors stop before the idle drain: a DEGRADED monitor's probe
	// timer self-reschedules with backoff and would otherwise keep the
	// engine busy forever.
	for _, mon := range mons {
		mon.Stop()
	}
	for _, pol := range policies {
		pol.Detach()
	}
	for _, d := range doubles {
		d.StopStats()
	}
	eng.RunUntilIdle()
	if !finished {
		r.Violations = append(r.Violations, fmt.Sprintf("cluster did not finish within 2x horizon %v", s.Horizon))
	}

	// Teardown: reap any completions whose interrupts were dropped, then
	// audit every layer.
	for i, d := range doubles {
		d.Quiesce()
		if left := d.Inflight(); left != 0 {
			r.Violations = append(r.Violations, fmt.Sprintf("VM%d: %d balloon/stats requests still in flight after quiesce", i, left))
		}
	}
	if err := machineAuditErr(m); err != nil {
		r.Violations = append(r.Violations, err.Error())
	}
	for i, mon := range mons {
		if err := mon.AuditErr(); err != nil {
			r.Violations = append(r.Violations, fmt.Sprintf("VM%d: %v", i, err))
		}
	}
	for i, d := range doubles {
		k := vms[i].Kernel
		if held, ballooned := d.FMEM.Held(), k.BalloonedOn(0); held != ballooned {
			r.Violations = append(r.Violations, fmt.Sprintf("VM%d: FMEM balloon holds %d but guest has %d ballooned", i, held, ballooned))
		}
		if held, ballooned := d.SMEM.Held(), k.BalloonedOn(1); held != ballooned {
			r.Violations = append(r.Violations, fmt.Sprintf("VM%d: SMEM balloon holds %d but guest has %d ballooned", i, held, ballooned))
		}
	}

	var ops uint64
	var wall sim.Time
	for _, x := range xs {
		ops += x.OpsDone()
		if x.FinishedAt() > wall {
			wall = x.FinishedAt()
		}
	}
	if wall > 0 {
		r.Throughput = float64(ops) / wall.Seconds()
	}

	r.Report = chaosRungReport(mult, r.Throughput, inj, vms, ds, doubles, mons)
	r.Snapshot = o.Reg.Snapshot()
	s.finishObs(fmt.Sprintf("chaos-x%g", mult), o)
	return r
}

// chaosRungReport renders one rung's fault and per-layer counters. Output
// is fully deterministic for a given seed/schedule. The core line reports
// zeros for non-demeter designs — their policy-side counters live in the
// metrics snapshot instead.
func chaosRungReport(mult, thpt float64, inj *fault.Injector, vms []*hypervisor.VM, ds []*core.Demeter, doubles []*balloon.Double, mons []*health.Monitor) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rung x%g: throughput %.4g ops/s\n", mult, thpt)

	for _, c := range inj.Counters() {
		fmt.Fprintf(&b, "  fault %-24s rate %-8g fired %d/%d\n", c.Point, c.Rate, c.Fired, c.Checked)
	}

	var hv struct{ busy, mrb, srb, spikes uint64 }
	var pe struct{ pmis, widen, narrow uint64 }
	for _, vm := range vms {
		st := vm.Stats()
		hv.busy += st.MigrateBusy
		hv.mrb += st.MigrateRollbacks
		hv.srb += st.SwapRollbacks
		hv.spikes += st.LatencySpikes
		if vm.PEBS != nil {
			ps := vm.PEBS.Stats()
			pe.pmis += ps.PMIs
			pe.widen += ps.Widenings
			pe.narrow += ps.Narrowings
		}
	}
	var co struct{ prom, swaps, busy, rb, retries, ok, abandoned uint64 }
	for _, d := range ds {
		st := d.Stats()
		co.prom += st.Promoted
		co.swaps += st.SwapPairs
		co.busy += st.Busy
		co.rb += st.Rollbacks
		co.retries += st.Retries
		co.ok += st.RetriedOK
		co.abandoned += st.Abandoned
	}
	var bl struct{ timeouts, recovered, aborts, resubmits uint64 }
	var vq struct{ stalls, drops, recovered uint64 }
	for _, d := range doubles {
		for _, side := range []*balloon.Balloon{d.FMEM, d.SMEM} {
			bl.timeouts += side.Timeouts
			bl.recovered += side.Recovered
			bl.aborts += side.Aborts
			bl.resubmits += side.Resubmits
			qs := side.QueueStats()
			vq.stalls += qs.StalledKicks
			vq.drops += qs.DroppedIRQs
			vq.recovered += qs.PollRecovered
		}
		qs := d.StatsQueueStats()
		vq.stalls += qs.StalledKicks
		vq.drops += qs.DroppedIRQs
		vq.recovered += qs.PollRecovered
	}

	fmt.Fprintf(&b, "  hypervisor: busy %d, migrate rollbacks %d, swap rollbacks %d, latency spikes %d\n",
		hv.busy, hv.mrb, hv.srb, hv.spikes)
	fmt.Fprintf(&b, "  core:       promoted %d, swaps %d, busy %d, rollbacks %d, retries %d (ok %d), abandoned %d\n",
		co.prom, co.swaps, co.busy, co.rb, co.retries, co.ok, co.abandoned)
	fmt.Fprintf(&b, "  balloon:    timeouts %d, recovered %d, aborts %d, resubmits %d\n",
		bl.timeouts, bl.recovered, bl.aborts, bl.resubmits)
	fmt.Fprintf(&b, "  virtio:     stalled kicks %d, dropped IRQs %d, poll-recovered %d\n",
		vq.stalls, vq.drops, vq.recovered)
	fmt.Fprintf(&b, "  pebs:       PMIs %d, widenings %d, narrowings %d\n",
		pe.pmis, pe.widen, pe.narrow)
	// The health line appears only when monitors ran: default chaos
	// output (and every pre-existing frozen corpus report) is unchanged.
	if len(mons) > 0 {
		var h struct {
			checks, beats, degr, fo, probes, failed, hb, rec uint64
			degraded                                         sim.Duration
		}
		for _, mon := range mons {
			st := mon.Stats()
			h.checks += st.Checks
			h.beats += st.MissedBeats
			h.degr += st.Degradations
			h.fo += st.Failovers
			h.probes += st.Probes
			h.failed += st.FailedProbes
			h.hb += st.Handbacks
			h.rec += st.Recoveries
			h.degraded += mon.DegradedTime()
		}
		fmt.Fprintf(&b, "  health:     checks %d, missed beats %d, degradations %d, failovers %d, probes %d (failed %d), handbacks %d, recoveries %d, degraded %v\n",
			h.checks, h.beats, h.degr, h.fo, h.probes, h.failed, h.hb, h.rec, h.degraded)
	}
	return b.String()
}
