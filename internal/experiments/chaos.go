package experiments

import (
	"fmt"
	"math"
	"strings"

	"demeter/internal/balloon"
	"demeter/internal/core"
	"demeter/internal/engine"
	"demeter/internal/fault"
	"demeter/internal/hypervisor"
	"demeter/internal/obs"
	"demeter/internal/sim"
	"demeter/internal/workload"
)

// ChaosConfig parameterizes a chaos run: a seed-driven fault schedule is
// applied at each rung of an intensity ladder while a full Demeter stack
// (double balloons, QoS rebalancer, PEBS-fed relocation) runs GUPS, and
// end-of-run invariants assert that no layer leaked or wedged.
type ChaosConfig struct {
	// Seed drives the fault injector; the same seed and schedule always
	// produce the same run (and the same report, bit for bit).
	Seed uint64
	// Schedule maps fault points to base rates; nil means every
	// registered point at its default rate.
	Schedule fault.Schedule
	// Ladder lists the schedule multipliers to run, one rung each. Rung 0
	// should be fault-free (multiplier 0) — it is the degradation
	// baseline. Nil means {0, 1, 4}.
	Ladder []float64
	// VMs overrides the cluster size (0 = the scale's s.VMs).
	VMs int
	// Floor is the minimum acceptable throughput at any rung as a
	// fraction of the fault-free baseline (0 = 0.5).
	Floor float64
}

// DefaultChaosConfig returns the standard ladder at seed 1.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{Seed: 1, Ladder: []float64{0, 1, 4}, Floor: 0.5}
}

// chaosRung is one ladder step's outcome.
type chaosRung struct {
	mult   float64
	thpt   float64
	report string
	errs   []string
}

// RunChaos runs the fault-injection ladder and returns a deterministic
// report. The error is non-nil when any invariant was violated at any
// rung; the report always includes the full per-layer accounting.
func RunChaos(s Scale, cfg ChaosConfig) (string, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Schedule == nil {
		cfg.Schedule = fault.DefaultSchedule()
	}
	if cfg.Ladder == nil {
		cfg.Ladder = []float64{0, 1, 4}
	}
	if cfg.VMs == 0 {
		cfg.VMs = s.VMs
	}
	if cfg.Floor == 0 {
		cfg.Floor = 0.5
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Chaos: %d VMs under schedule %q, seed %d\n\n", cfg.VMs, cfg.Schedule.String(), cfg.Seed)

	// Each rung is an independent leaf run: its own engine and its own
	// injector seeded identically, so the fault stream at rung i does not
	// depend on which rungs ran before (or concurrently with) it. The
	// baseline ratio and floor check are derived after collection.
	rungs := runIndexed(len(cfg.Ladder), func(i int) chaosRung {
		return runChaosRung(s, cfg, cfg.Ladder[i])
	})

	var failures []string
	for i := range rungs {
		r := &rungs[i]
		if i > 0 && rungs[0].thpt > 0 {
			ratio := r.thpt / rungs[0].thpt
			r.report += fmt.Sprintf("  throughput vs baseline: %.2fx\n", ratio)
			if ratio < cfg.Floor {
				r.errs = append(r.errs, fmt.Sprintf("throughput %.2fx below floor %.2fx", ratio, cfg.Floor))
			}
		}
		if len(r.errs) == 0 {
			r.report += "  invariants: OK\n"
		} else {
			for _, e := range r.errs {
				r.report += fmt.Sprintf("  INVARIANT VIOLATED: %s\n", e)
				failures = append(failures, fmt.Sprintf("x%g: %s", r.mult, e))
			}
		}
		b.WriteString(r.report)
		b.WriteByte('\n')
	}

	if len(failures) > 0 {
		return b.String(), fmt.Errorf("chaos: %d invariant violation(s): %s", len(failures), strings.Join(failures, "; "))
	}
	b.WriteString("All invariants held at every rung: no frame leaks, no lost balloon\n" +
		"pages, GPT/EPT/TLB consistent, throughput within the degradation floor.\n")
	return b.String(), nil
}

// runChaosRung runs one ladder step: a fresh cluster with the schedule
// scaled by mult, full Demeter management, then the invariant battery.
func runChaosRung(s Scale, cfg ChaosConfig, mult float64) chaosRung {
	r := chaosRung{mult: mult}
	eng := sim.NewEngine()
	n := cfg.VMs

	inj := fault.NewInjector(cfg.Seed)
	cfg.Schedule.Scale(mult).Apply(inj)

	m := hypervisor.NewMachine(eng, hostTopology("pmem", s.VMFMEM*uint64(n), s.VMSMEM*uint64(n)))
	m.Fault = inj // before NewVM/NewDouble so every layer inherits it
	if s.ScanPTECost > 0 {
		m.Cost.ScanPTECost = s.ScanPTECost
	}
	o := obs.New(0)
	m.AttachObs(o) // before NewVM/NewDouble so publish hooks register
	// Journal each fired fault. OnFire runs after the draw, so the fault
	// stream is identical with or without observability attached.
	inj.OnFire = func(p fault.Point, magnitude float64) {
		o.Journal.Append(obs.Event{
			At: eng.Now(), Type: obs.EvFault, VM: -1,
			Note: string(p), Arg1: math.Float64bits(magnitude),
		})
	}

	// Elastic configuration: guest nodes at full capacity, the double
	// balloon carves the actual provision (figure 6's demeter scheme).
	var vms []*hypervisor.VM
	var doubles []*balloon.Double
	pending := n
	for i := 0; i < n; i++ {
		total := s.VMFMEM + s.VMSMEM
		vm, err := m.NewVM(hypervisor.VMConfig{
			VCPUs: 4, GuestFMEM: total, GuestSMEM: total,
			FMEMBacking: 0, SMEMBacking: 1,
		})
		if err != nil {
			panic(err)
		}
		d := balloon.NewDouble(eng, vm)
		d.SetProvision(s.VMFMEM, s.VMSMEM, func() { pending-- })
		vms = append(vms, vm)
		doubles = append(doubles, d)
	}
	for pending > 0 {
		if !eng.Step() {
			r.errs = append(r.errs, "provisioning never settled (balloon watchdog failed to fire)")
			r.report = fmt.Sprintf("rung x%g:\n", mult)
			return r
		}
	}

	for _, d := range doubles {
		d.StartStats(2 * s.EpochPeriod)
	}
	reb := balloon.NewRebalancer(eng, doubles, nil)
	reb.Budget = s.VMFMEM * uint64(n)
	reb.MinPerVM = s.VMFMEM / 4
	reb.SMEMPerVM = s.VMSMEM
	reb.Start(8 * s.EpochPeriod)

	var xs []*engine.Executor
	var ds []*core.Demeter
	for i, vm := range vms {
		ccfg := core.DefaultConfig()
		ccfg.EpochPeriod = s.EpochPeriod
		ccfg.SamplePeriod = s.SamplePeriod
		ccfg.Params.GranularityPages = s.Granularity
		ccfg.MigrationBatch = s.MigrationBatch
		// The executor's workload Setup must run before the policy
		// attaches: the range tree snapshots the process VMAs at attach.
		xs = append(xs, engine.NewExecutor(eng, vm,
			workload.NewGUPS(s.GUPSFootprint, s.GUPSOps, uint64(i)+1)))
		d := core.New(ccfg)
		d.Attach(eng, vm)
		ds = append(ds, d)
	}

	// Double the horizon: faulty rungs legitimately run slower, and the
	// degradation floor (not the horizon) is the performance assertion.
	finished := engine.RunAll(eng, 2*s.Horizon, xs...)
	reb.Stop()
	for _, d := range ds {
		d.Detach()
	}
	for _, d := range doubles {
		d.StopStats()
	}
	eng.RunUntilIdle()
	if !finished {
		r.errs = append(r.errs, fmt.Sprintf("cluster did not finish within 2x horizon %v", s.Horizon))
	}

	// Teardown: reap any completions whose interrupts were dropped, then
	// audit every layer.
	for i, d := range doubles {
		d.Quiesce()
		if left := d.Inflight(); left != 0 {
			r.errs = append(r.errs, fmt.Sprintf("VM%d: %d balloon/stats requests still in flight after quiesce", i, left))
		}
	}
	if err := machineAuditErr(m); err != nil {
		r.errs = append(r.errs, err.Error())
	}
	for i, d := range doubles {
		k := vms[i].Kernel
		if held, ballooned := d.FMEM.Held(), k.BalloonedOn(0); held != ballooned {
			r.errs = append(r.errs, fmt.Sprintf("VM%d: FMEM balloon holds %d but guest has %d ballooned", i, held, ballooned))
		}
		if held, ballooned := d.SMEM.Held(), k.BalloonedOn(1); held != ballooned {
			r.errs = append(r.errs, fmt.Sprintf("VM%d: SMEM balloon holds %d but guest has %d ballooned", i, held, ballooned))
		}
	}

	var ops uint64
	var wall sim.Time
	for _, x := range xs {
		ops += x.OpsDone()
		if x.FinishedAt() > wall {
			wall = x.FinishedAt()
		}
	}
	if wall > 0 {
		r.thpt = float64(ops) / wall.Seconds()
	}

	r.report = chaosRungReport(mult, r.thpt, inj, vms, ds, doubles)
	s.finishObs(fmt.Sprintf("chaos-x%g", mult), o)
	return r
}

// chaosRungReport renders one rung's fault and per-layer counters. Output
// is fully deterministic for a given seed/schedule.
func chaosRungReport(mult, thpt float64, inj *fault.Injector, vms []*hypervisor.VM, ds []*core.Demeter, doubles []*balloon.Double) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rung x%g: throughput %.4g ops/s\n", mult, thpt)

	for _, c := range inj.Counters() {
		fmt.Fprintf(&b, "  fault %-24s rate %-8g fired %d/%d\n", c.Point, c.Rate, c.Fired, c.Checked)
	}

	var hv struct{ busy, mrb, srb, spikes uint64 }
	var pe struct{ pmis, widen, narrow uint64 }
	for _, vm := range vms {
		st := vm.Stats()
		hv.busy += st.MigrateBusy
		hv.mrb += st.MigrateRollbacks
		hv.srb += st.SwapRollbacks
		hv.spikes += st.LatencySpikes
		if vm.PEBS != nil {
			ps := vm.PEBS.Stats()
			pe.pmis += ps.PMIs
			pe.widen += ps.Widenings
			pe.narrow += ps.Narrowings
		}
	}
	var co struct{ prom, swaps, busy, rb, retries, ok, abandoned uint64 }
	for _, d := range ds {
		st := d.Stats()
		co.prom += st.Promoted
		co.swaps += st.SwapPairs
		co.busy += st.Busy
		co.rb += st.Rollbacks
		co.retries += st.Retries
		co.ok += st.RetriedOK
		co.abandoned += st.Abandoned
	}
	var bl struct{ timeouts, recovered, aborts, resubmits uint64 }
	var vq struct{ stalls, drops, recovered uint64 }
	for _, d := range doubles {
		for _, side := range []*balloon.Balloon{d.FMEM, d.SMEM} {
			bl.timeouts += side.Timeouts
			bl.recovered += side.Recovered
			bl.aborts += side.Aborts
			bl.resubmits += side.Resubmits
			qs := side.QueueStats()
			vq.stalls += qs.StalledKicks
			vq.drops += qs.DroppedIRQs
			vq.recovered += qs.PollRecovered
		}
		qs := d.StatsQueueStats()
		vq.stalls += qs.StalledKicks
		vq.drops += qs.DroppedIRQs
		vq.recovered += qs.PollRecovered
	}

	fmt.Fprintf(&b, "  hypervisor: busy %d, migrate rollbacks %d, swap rollbacks %d, latency spikes %d\n",
		hv.busy, hv.mrb, hv.srb, hv.spikes)
	fmt.Fprintf(&b, "  core:       promoted %d, swaps %d, busy %d, rollbacks %d, retries %d (ok %d), abandoned %d\n",
		co.prom, co.swaps, co.busy, co.rb, co.retries, co.ok, co.abandoned)
	fmt.Fprintf(&b, "  balloon:    timeouts %d, recovered %d, aborts %d, resubmits %d\n",
		bl.timeouts, bl.recovered, bl.aborts, bl.resubmits)
	fmt.Fprintf(&b, "  virtio:     stalled kicks %d, dropped IRQs %d, poll-recovered %d\n",
		vq.stalls, vq.drops, vq.recovered)
	fmt.Fprintf(&b, "  pebs:       PMIs %d, widenings %d, narrowings %d\n",
		pe.pmis, pe.widen, pe.narrow)
	return b.String()
}
