package experiments

import (
	"fmt"

	"demeter/internal/balloon"
	"demeter/internal/engine"
	"demeter/internal/hypervisor"
	"demeter/internal/obs"
	"demeter/internal/sim"
	"demeter/internal/stats"
	"demeter/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "figure6",
		Title: "GUPS throughput under different tiered memory provisioning techniques",
		Run:   Figure6,
	})
}

// provisionScheme describes how a VM's tier composition is established.
type provisionScheme struct {
	name   string
	design string // guest TMM attached after provisioning
	// setup provisions one VM and must call done() when settled.
	setup func(eng *sim.Engine, vm *hypervisor.VM, s Scale, done func())
	// fullCapacityNodes: guest nodes sized at 100% of VM memory with
	// balloons carving the provision (the elastic configurations).
	fullCapacityNodes bool
}

func staticSetup(eng *sim.Engine, _ *hypervisor.VM, _ Scale, done func()) { eng.After(0, done) }

func virtioSetup(eng *sim.Engine, vm *hypervisor.VM, s Scale, done func()) {
	// The host wants the guest shrunk from 2×total capacity to the
	// provisioned total; the legacy balloon cannot say which tier.
	b := balloon.NewLegacy(eng, vm)
	total := s.VMFMEM + s.VMSMEM
	b.Inflate(total, func(uint64) { done() })
}

func demeterSetup(eng *sim.Engine, vm *hypervisor.VM, s Scale, done func()) {
	d := balloon.NewDouble(eng, vm)
	d.SetProvision(s.VMFMEM, s.VMSMEM, done)
}

// Figure6 reproduces §5.2.1: nine VMs run GUPS under four provisioning
// schemes. Paper shape: the Demeter balloon matches static allocation
// while the tier-unaware VirtIO balloon under-provisions FMEM so badly
// that even with guest TMM it loses ~40% (Demeter balloon delivers +68%
// over VirtIO+TPP).
func Figure6(s Scale) string {
	schemes := []provisionScheme{
		{name: "static+tpp", design: "tpp", setup: staticSetup},
		{name: "virtio-balloon+tpp", design: "tpp", setup: virtioSetup, fullCapacityNodes: true},
		{name: "demeter-balloon+tpp", design: "tpp", setup: demeterSetup, fullCapacityNodes: true},
		{name: "demeter-balloon+demeter", design: "demeter", setup: demeterSetup, fullCapacityNodes: true},
	}

	thpts := runIndexed(len(schemes), func(i int) float64 {
		return runProvisioned(s, schemes[i])
	})

	tb := stats.NewTable("Figure 6: average GUPS throughput by provisioning technique (9 VMs)",
		"Provisioning", "Throughput (ops/s)", "vs static")
	staticThpt := thpts[0] // static+tpp is the first scheme
	report := ""
	for i, scheme := range schemes {
		tb.AddRow(scheme.name, fmt.Sprintf("%.3g", thpts[i]), fmt.Sprintf("%.2fx", thpts[i]/staticThpt))
	}
	report += tb.String()
	report += "\nPaper shape: Demeter balloon ≈ static; VirtIO balloon (+TPP) far\n" +
		"behind (Demeter balloon +68%) because inflation drains FMEM first.\n"
	return report
}

// runProvisioned builds the cluster, settles provisioning, then runs GUPS
// and returns aggregate throughput.
func runProvisioned(s Scale, scheme provisionScheme) float64 {
	eng := sim.NewEngine()
	n := s.VMs
	m := hypervisor.NewMachine(eng, hostTopology("pmem", s.VMFMEM*uint64(n), s.VMSMEM*uint64(n)))
	if s.ScanPTECost > 0 {
		m.Cost.ScanPTECost = s.ScanPTECost
	}
	o := obs.New(0)
	m.AttachObs(o) // before balloons attach, so their publish hooks register

	var vms []*hypervisor.VM
	pending := n
	for i := 0; i < n; i++ {
		guestFMEM, guestSMEM := s.VMFMEM, s.VMSMEM
		if scheme.fullCapacityNodes {
			total := s.VMFMEM + s.VMSMEM
			guestFMEM, guestSMEM = total, total
		}
		vm, err := m.NewVM(hypervisor.VMConfig{
			VCPUs: 4, GuestFMEM: guestFMEM, GuestSMEM: guestSMEM,
			FMEMBacking: 0, SMEMBacking: 1,
		})
		if err != nil {
			panic(err)
		}
		vms = append(vms, vm)
		scheme.setup(eng, vm, s, func() { pending-- })
	}
	// Settle ballooning before workloads start (boot-time resizing).
	for pending > 0 {
		if !eng.Step() {
			panic("experiments: provisioning never settled")
		}
	}

	// Each VM runs its own full GUPS instance (16 GiB VM, ~14 GiB table
	// in the paper).
	fp := s.GUPSFootprint
	ops := s.GUPSOps
	var xs []*engine.Executor
	var policies []Policy
	for i, vm := range vms {
		x := engine.NewExecutor(eng, vm, workload.Must(workload.NewGUPS(fp, ops, uint64(i)+1)))
		pol := s.NewPolicy(scheme.design)
		pol.Attach(eng, vm)
		policies = append(policies, pol)
		xs = append(xs, x)
	}
	if !engine.RunAll(eng, s.Horizon, xs...) {
		panic(fmt.Sprintf("experiments: figure6 %s did not finish", scheme.name))
	}
	for _, p := range policies {
		p.Detach()
	}
	var ops2 uint64
	var wall sim.Time
	for _, x := range xs {
		ops2 += x.OpsDone()
		if x.FinishedAt() > wall {
			wall = x.FinishedAt()
		}
	}
	auditMachine(m)
	s.finishObs("figure6-"+scheme.name, o)
	return float64(ops2) / wall.Seconds()
}
