package experiments

import (
	"strings"
	"testing"

	"demeter/internal/balloon"
	"demeter/internal/core"
	"demeter/internal/fault"
)

// guestFaultSchedule arms every delegation-path fault point at rates
// aggressive enough that agents crash, stall, lie, and wedge within a
// tiny-scale run.
func guestFaultSchedule() fault.Schedule {
	return fault.Schedule{
		core.FaultAgentCrash:    0.05,
		core.FaultAgentStall:    0.05,
		core.FaultChannelWedge:  0.05,
		balloon.FaultStaleStats: 0.2,
		balloon.FaultOpTimeout:  0.05,
	}
}

func healthChaosConfig() ChaosConfig {
	cfg := DefaultChaosConfig()
	cfg.VMs = 2
	cfg.Health = true
	cfg.Schedule = guestFaultSchedule()
	cfg.Ladder = []float64{0, 1, 4}
	// Crashed agents freeze tiering until failover catches up; the floor
	// asserts the fallback keeps the cluster moving, not that it matches
	// fault-free throughput.
	cfg.Floor = 0.1
	return cfg
}

// TestChaosHealthInvariantsUnderAgentFaults arms all four guest-delegation
// fault points with monitors on: every rung must finish with zero
// violations (monitor audit included) and the report must carry the
// health accounting line.
func TestChaosHealthInvariantsUnderAgentFaults(t *testing.T) {
	s := Tiny()
	report, err := RunChaos(s, healthChaosConfig())
	if err != nil {
		t.Fatalf("health chaos failed: %v\n%s", err, report)
	}
	if !strings.Contains(report, "invariants: OK") {
		t.Fatalf("report missing invariant confirmation:\n%s", report)
	}
	if !strings.Contains(report, "health:") {
		t.Fatalf("report missing health accounting:\n%s", report)
	}
	// The armed crash/stall faults must actually trip the monitor at the
	// faulty rungs — a chaos smoke that never degrades tests nothing.
	if !strings.Contains(report, "degradations ") || strings.Contains(report, "checks 0,") {
		t.Fatalf("monitors never ran:\n%s", report)
	}
}

// TestChaosHealthDisabledKeepsReportShape: without Health the report must
// not grow a health line, so pre-existing frozen corpus reports and the
// default chaos smoke stay byte-stable.
func TestChaosHealthDisabledKeepsReportShape(t *testing.T) {
	s := Tiny()
	cfg := DefaultChaosConfig()
	cfg.VMs = 2
	cfg.Ladder = []float64{0, 1}
	report, err := RunChaos(s, cfg)
	if err != nil {
		t.Fatalf("chaos failed: %v\n%s", err, report)
	}
	if strings.Contains(report, "health:") {
		t.Fatalf("health line leaked into monitor-less report:\n%s", report)
	}
}

// TestChaosHealthConfigValidation pins the scenario-space boundaries for
// the new knobs.
func TestChaosHealthConfigValidation(t *testing.T) {
	s := Tiny()
	bad := []ChaosConfig{
		{Seed: 1, HeartbeatEpochs: 4}, // heartbeat without health
		{Seed: 1, NoFailover: true},   // failover knob without health
		{Seed: 1, Health: true, HeartbeatEpochs: 65},
		{Seed: 1, Health: true, HeartbeatEpochs: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Normalized(s).Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
	good := ChaosConfig{Seed: 1, Health: true, NoFailover: true, HeartbeatEpochs: 2}
	if err := good.Normalized(s).Validate(); err != nil {
		t.Errorf("good health config rejected: %v", err)
	}
}

// TestChaosParallelHealthByteIdentical extends the determinism guarantee
// to monitored runs: failover and handback must replay bit-identically
// across worker-pool widths.
func TestChaosParallelHealthByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster runs in -short mode")
	}
	s := Tiny()
	cfg := healthChaosConfig()
	run := func() string {
		report, err := RunChaos(s, cfg)
		if err != nil {
			t.Fatalf("health chaos failed: %v\n%s", err, report)
		}
		return report
	}
	seq, par := seqVsPar(t, run)
	if seq != par {
		t.Errorf("parallel health chaos differs from sequential\n--- sequential:\n%s\n--- parallel:\n%s", seq, par)
	}
}
