package experiments

import (
	"strings"
	"sync"
	"testing"
)

// seqVsPar runs f sequentially and with worker pools of 4 and 8 and
// returns the sequential output plus the 4-worker one; the 8-worker run
// is asserted against the 4-worker run inline, so a caller comparing
// seq == par has covered all three widths. Parallelism is restored to
// sequential afterward so other tests are unaffected.
func seqVsPar(t *testing.T, f func() string) (seq, par string) {
	t.Helper()
	SetParallelism(1)
	seq = f()
	defer SetParallelism(1)
	SetParallelism(4)
	par = f()
	SetParallelism(8)
	if par8 := f(); par8 != par {
		t.Errorf("8-worker output differs from 4-worker output")
	}
	return seq, par
}

func TestRunIndexedOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 4} {
		SetParallelism(workers)
		got := runIndexed(17, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d holds %d, want %d", workers, i, v, i*i)
			}
		}
	}
	SetParallelism(1)
}

func TestSetParallelism(t *testing.T) {
	if got := SetParallelism(4); got != 4 {
		t.Errorf("SetParallelism(4) = %d", got)
	}
	if Parallelism() != 4 {
		t.Errorf("Parallelism() = %d after SetParallelism(4)", Parallelism())
	}
	if got := SetParallelism(0); got < 1 {
		t.Errorf("SetParallelism(0) = %d, want >= 1", got)
	}
	if got := SetParallelism(1); got != 1 {
		t.Errorf("SetParallelism(1) = %d", got)
	}
	if Parallelism() != 1 {
		t.Errorf("Parallelism() = %d after SetParallelism(1)", Parallelism())
	}
}

// TestParallelExperimentByteIdentical is the tentpole guarantee: fanning
// an experiment's leaf cluster runs across workers yields the exact bytes
// sequential execution produces. Table1 covers single-big-VM clusters and
// the post-collection ratio column; figure2 covers the (VM count × design)
// grid.
func TestParallelExperimentByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster runs in -short mode")
	}
	s := Tiny()
	for _, id := range []string{"table1", "figure2"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		seq, par := seqVsPar(t, func() string { return e.Run(s) })
		if seq != par {
			t.Errorf("%s: parallel output differs from sequential\n--- sequential:\n%s\n--- parallel:\n%s", id, seq, par)
		}
	}
}

// TestRunExperimentsByteIdentical fans out at the outer level too: whole
// experiments run concurrently and the assembled reports must match the
// sequential ones byte for byte, in input order.
func TestRunExperimentsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster runs in -short mode")
	}
	s := Tiny()
	var es []Experiment
	for _, id := range []string{"table2", "ablation-damon"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		es = append(es, e)
	}
	run := func() string {
		var b strings.Builder
		for _, r := range RunExperiments(s, es) {
			b.WriteString(r.ID)
			b.WriteByte('\n')
			b.WriteString(r.Output)
			b.WriteByte('\n')
		}
		return b.String()
	}
	seq, par := seqVsPar(t, run)
	if seq != par {
		t.Errorf("parallel suite differs from sequential\n--- sequential:\n%s\n--- parallel:\n%s", seq, par)
	}
}

// TestChaosParallelFaultStreamsIndependent guards the fault seams: each
// rung builds its own injector from the config seed, so rungs running
// concurrently must draw identical fault streams to rungs running alone —
// the report embeds per-point fired/checked counters, so any cross-rung
// contamination shows up as a byte diff.
func TestChaosParallelFaultStreamsIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster runs in -short mode")
	}
	s := Tiny()
	cfg := DefaultChaosConfig()
	cfg.VMs = 2
	cfg.Ladder = []float64{0, 1, 2}
	run := func() string {
		report, err := RunChaos(s, cfg)
		if err != nil {
			t.Fatalf("chaos failed: %v\n%s", err, report)
		}
		return report
	}
	seq, par := seqVsPar(t, run)
	if seq != par {
		t.Errorf("parallel chaos ladder differs from sequential\n--- sequential:\n%s\n--- parallel:\n%s", seq, par)
	}
	if !strings.Contains(seq, "fault ") {
		t.Fatalf("report carries no fault counters:\n%s", seq)
	}
}

// TestRunIndexedConcurrentCallers exercises the coordinator pattern: many
// token-free goroutines each fan out leaf jobs through the shared pool.
func TestRunIndexedConcurrentCallers(t *testing.T) {
	SetParallelism(3)
	defer SetParallelism(1)
	var wg sync.WaitGroup
	out := make([][]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out[g] = runIndexed(9, func(i int) int { return g*100 + i })
		}(g)
	}
	wg.Wait()
	for g, vs := range out {
		for i, v := range vs {
			if v != g*100+i {
				t.Fatalf("caller %d slot %d holds %d", g, i, v)
			}
		}
	}
}
