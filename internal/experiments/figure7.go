package experiments

import (
	"fmt"

	"demeter/internal/stats"
	"demeter/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "figure7",
		Title: "Breakdown of TMM overhead (track/classify/migrate CPU seconds) across guest designs",
		Run:   Figure7,
	})
	register(Experiment{
		ID:    "figure8",
		Title: "Instantaneous GUPS throughput over time across guest designs",
		Run:   Figure8,
	})
}

// runGUPSNine runs the §5.2.2 setting: nine VMs, each with its own full
// GUPS table, under one design.
func runGUPSNine(s Scale, design string, sampleEvery int64) ClusterResult {
	opt := clusterOptions{}
	if sampleEvery > 0 {
		opt.sampleEvery = s.EpochPeriod
	}
	return s.RunCluster(design, s.VMs, func(vmID int) workload.Workload {
		return workload.Must(workload.NewGUPS(s.GUPSFootprint, s.GUPSOps, uint64(vmID)+1))
	}, opt)
}

// Figure7 reproduces the overhead breakdown: per-design CPU seconds spent
// in access tracking, hotness classification and migration. Paper shape:
// Demeter's context-switch draining is ~16× cheaper than Memtis' threads;
// TPP/Nomad pay heavy scan costs; Demeter's migration is ~28% of TPP's
// while moving more hot data.
func Figure7(s Scale) string {
	results := runIndexed(len(GuestDesigns), func(i int) ClusterResult {
		return runGUPSNine(s, GuestDesigns[i], 0)
	})

	tb := stats.NewTable("Figure 7: TMM overhead breakdown (CPU seconds, summed over 9 VMs)",
		"Design", "Track", "Classify", "Migrate", "Total", "Runtime (s)")
	type row struct {
		track, migrate float64
	}
	rows := map[string]row{}
	for i, d := range GuestDesigns {
		res := results[i]
		track := res.GuestCPU.Total("track").Seconds()
		classify := res.GuestCPU.Total("classify").Seconds()
		migrate := res.GuestCPU.Total("migrate").Seconds()
		rows[d] = row{track: track, migrate: migrate}
		tb.AddRow(d,
			fmt.Sprintf("%.4f", track),
			fmt.Sprintf("%.4f", classify),
			fmt.Sprintf("%.4f", migrate),
			fmt.Sprintf("%.4f", track+classify+migrate),
			fmt.Sprintf("%.3f", res.AvgRuntime()))
	}
	out := tb.String()
	if rows["demeter"].track > 0 {
		out += fmt.Sprintf("\nTracking ratio Memtis/Demeter: %.1fx (paper: ~16x)\n",
			rows["memtis"].track/rows["demeter"].track)
	}
	if rows["tpp"].migrate > 0 {
		out += fmt.Sprintf("Migration ratio Demeter/TPP: %.2f (paper: ~0.28)\n",
			rows["demeter"].migrate/rows["tpp"].migrate)
	}
	return out
}

// Figure8 reproduces the instantaneous-throughput time series: Demeter
// should ramp fastest (quick hot-range identification), peak highest and
// finish earliest.
func Figure8(s Scale) string {
	out := "Figure 8: instantaneous GUPS throughput (ops/s), EWMA-smoothed\n\n"
	type summary struct {
		finish   float64
		peak     float64
		rampTime float64 // time to reach 80% of peak
	}
	results := runIndexed(len(GuestDesigns), func(i int) ClusterResult {
		return runGUPSNine(s, GuestDesigns[i], 1)
	})
	summaries := map[string]summary{}
	for i, d := range GuestDesigns {
		res := results[i]
		series := res.Series.Smoothed(0.3)
		var peak float64
		for _, v := range series.Values {
			if v > peak {
				peak = v
			}
		}
		ramp := 0.0
		for i, v := range series.Values {
			if v >= 0.8*peak {
				ramp = series.Times[i]
				break
			}
		}
		summaries[d] = summary{finish: res.Wall.Seconds(), peak: peak, rampTime: ramp}
		out += fmt.Sprintf("## %s\n", d)
		for i := range series.Times {
			out += fmt.Sprintf("t=%.3fs thpt=%.3g\n", series.Times[i], series.Values[i])
		}
		out += "\n"
	}
	tb := stats.NewTable("Summary", "Design", "Peak (ops/s)", "Ramp to 80% (s)", "Finish (s)")
	for _, d := range GuestDesigns {
		sm := summaries[d]
		tb.AddRow(d, fmt.Sprintf("%.3g", sm.peak), fmt.Sprintf("%.3f", sm.rampTime), fmt.Sprintf("%.3f", sm.finish))
	}
	out += tb.String()
	out += "\nPaper shape: Demeter has the steepest early ramp, the highest peak\n" +
		"and the earliest completion; the mid-run dip corresponds to migration.\n"
	return out
}
