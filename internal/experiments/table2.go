package experiments

import (
	"fmt"

	"demeter/internal/hypervisor"
	"demeter/internal/mem"
	"demeter/internal/obs"
	"demeter/internal/sim"
	"demeter/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Memory access latency and bandwidth matrix (Memory Latency Checker analog)",
		Run:   Table2,
	})
}

// MeasureTierLatency runs an MLC-style dependent-load loop against pages
// pinned to one host node and returns the average measured access
// latency. It exercises the full simulated hardware path (TLB, walks,
// tier latency) rather than echoing configuration.
func MeasureTierLatency(tier string, node int) sim.Duration {
	return Scale{}.measureTierLatency(tier, node)
}

// measureTierLatency is MeasureTierLatency carrying the Scale so probe
// runs contribute to the experiment's metrics snapshot.
func (s Scale) measureTierLatency(tier string, node int) sim.Duration {
	eng := sim.NewEngine()
	m := hypervisor.NewMachine(eng, hostTopology(tier, 4096, 4096))
	o := obs.New(0)
	m.AttachObs(o)
	guestFMEM, guestSMEM := uint64(4096), uint64(4096)
	vm, err := m.NewVM(hypervisor.VMConfig{
		VCPUs: 1, GuestFMEM: guestFMEM, GuestSMEM: guestSMEM,
		FMEMBacking: 0, SMEMBacking: 1,
	})
	if err != nil {
		panic(err)
	}
	const pages = 512
	start := vm.Proc.Mmap(pages * mem.PageSize)
	var burned []mem.Frame
	if node == 1 {
		// Exhaust the guest fast node so first touches land on SMEM.
		for {
			f, ok := vm.Kernel.AllocPageOn(0)
			if !ok {
				break
			}
			burned = append(burned, f)
		}
	}
	// Touch (cold) then measure warm latencies like MLC's idle-latency
	// pointer chase.
	for i := uint64(0); i < pages; i++ {
		vm.Access(start+i*mem.PageSize, false)
	}
	var total sim.Duration
	const rounds = 8
	for r := 0; r < rounds; r++ {
		for i := uint64(0); i < pages; i++ {
			total += vm.Access(start+i*mem.PageSize, false)
		}
	}
	for _, f := range burned {
		vm.Kernel.FreePage(f)
	}
	auditMachine(m)
	s.finishObs(fmt.Sprintf("mlc-%s-node%d", tier, node), o)
	return total / (pages * rounds)
}

// Table2 reproduces the platform characterization: idle latency per
// medium (measured through the simulator) and the configured stream
// bandwidths, alongside the paper's measured values.
func Table2(s Scale) string {
	probes := []struct {
		tier string
		node int
	}{{"pmem", 0}, {"cxl", 1}, {"pmem", 1}}
	lats := runIndexed(len(probes), func(i int) sim.Duration {
		return s.measureTierLatency(probes[i].tier, probes[i].node)
	})

	tb := stats.NewTable("Table 2: memory access latency and bandwidth matrix",
		"Access to", "Idle (ns)", "Paper (ns)", "Loaded (ns, measured)", "Bandwidth (MB/s)", "Paper (MB/s)")
	tb.AddRow("L2", int64(mem.SpecL2.LoadLatency), 53.6, "-", "-", "-")
	tb.AddRow("L-DRAM", int64(mem.SpecLocalDRAM.LoadLatency), 68.7, int64(lats[0]),
		fmt.Sprintf("%.1f", mem.SpecLocalDRAM.ReadBWMBps), 88156.5)
	tb.AddRow("R-DRAM (CXL emu)", int64(mem.SpecRemoteDRAM.LoadLatency), 121.9, int64(lats[1]),
		fmt.Sprintf("%.1f", mem.SpecRemoteDRAM.ReadBWMBps), 53533.8)
	tb.AddRow("L-PMEM", int64(mem.SpecPMEM.LoadLatency), 176.6, int64(lats[2]),
		fmt.Sprintf("%.1f", mem.SpecPMEM.ReadBWMBps), 21414.5)

	return tb.String() +
		"\nIdle latencies seed the cost model from the paper's MLC matrix; the\n" +
		"measured column runs a warm dependent-load loop through the simulated\n" +
		"hardware path and reports effective (loaded) latency per tier.\n"
}
