package experiments

import (
	"strings"
	"testing"

	"demeter/internal/workload"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "figure2", "figure4", "figure6", "figure7",
		"figure8", "figure9", "figure10", "figure11", "figure12",
		"ablation-draining", "ablation-translation", "ablation-relocation",
		"ablation-event", "ablation-pml", "ablation-damon", "ablation-granularity",
		"degraded",
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(All()), len(want))
	}
	// Ordering: tables first, figure2 before figure10.
	ids := []string{}
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	if ids[0] != "table1" || ids[1] != "table2" {
		t.Errorf("ordering wrong: %v", ids)
	}
	i2, i10 := -1, -1
	for i, id := range ids {
		if id == "figure2" {
			i2 = i
		}
		if id == "figure10" {
			i10 = i
		}
	}
	if i2 > i10 {
		t.Errorf("figure2 should precede figure10: %v", ids)
	}
}

func TestPolicyFactory(t *testing.T) {
	s := Tiny()
	for _, d := range []string{"static", "demeter", "tpp", "tpp-h", "memtis", "nomad", "vtmm", "damon"} {
		p := s.NewPolicy(d)
		if p == nil {
			t.Fatalf("nil policy for %q", d)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown design did not panic")
		}
	}()
	s.NewPolicy("bogus")
}

func TestAppFactoryCoversAll(t *testing.T) {
	s := Tiny()
	for _, app := range append(Apps, "gups") {
		w := s.NewApp(app, 1)
		if w == nil || w.TotalOps() == 0 {
			t.Fatalf("bad workload for %q", app)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	local := MeasureTierLatency("pmem", 0)
	rdram := MeasureTierLatency("cxl", 1)
	pmem := MeasureTierLatency("pmem", 1)
	if !(local < rdram && rdram < pmem) {
		t.Fatalf("tier latency ordering broken: DRAM=%v R-DRAM=%v PMEM=%v", local, rdram, pmem)
	}
	// Warm measured latencies reflect loaded media latency (the TLB is
	// warm, so walks are rare).
	if local > 150 {
		t.Fatalf("warm local DRAM latency %v implausibly high", local)
	}
}

func TestTable1Shape(t *testing.T) {
	s := Tiny()
	footprint := s.GUPSFootprint * 2 // keep the single-VM run small
	fmem := footprint * 2 / 7
	type res struct {
		single, full uint64
		runtime      float64
	}
	results := map[string]res{}
	for _, design := range []string{"tpp-h", "tpp", "demeter"} {
		big := s
		big.VMFMEM, big.VMSMEM = fmem, footprint
		r := big.RunCluster(design, 1, func(int) workload.Workload {
			return workload.Must(workload.NewGUPS(footprint, s.GUPSOps*2, 1))
		}, clusterOptions{})
		results[design] = res{r.TLB.SingleFlushes, r.TLB.FullFlushes, r.Runtimes[0].Seconds()}
	}
	if results["tpp-h"].full == 0 {
		t.Error("H-TPP must issue full flushes")
	}
	if results["tpp"].full != 0 || results["demeter"].full != 0 {
		t.Error("guest designs must not issue full flushes")
	}
	if results["demeter"].single >= results["tpp"].single {
		t.Errorf("Demeter singles (%d) should undercut G-TPP's (%d)",
			results["demeter"].single, results["tpp"].single)
	}
	if !(results["tpp-h"].runtime > results["tpp"].runtime &&
		results["tpp"].runtime > results["demeter"].runtime) {
		t.Errorf("runtime ordering H-TPP > G-TPP > Demeter violated: %+v", results)
	}
}

func TestFigure2Shape(t *testing.T) {
	s := Tiny()
	cores := map[string]float64{}
	for _, d := range []string{"tpp", "memtis", "demeter"} {
		r := s.splitScale(s.VMs).RunCluster(d, s.VMs, s.gupsSplit(s.VMs), clusterOptions{})
		cores[d] = r.CoresUsed()
	}
	if !(cores["demeter"] < cores["memtis"] && cores["memtis"] < cores["tpp"]) {
		t.Errorf("core usage ordering violated: %+v", cores)
	}
}

func TestFigure4Shape(t *testing.T) {
	gva, gpa := Figure4Data(Tiny())
	cv, cp := gva.concentration(4), gpa.concentration(4)
	if cv <= cp {
		t.Errorf("virtual concentration (%.2f) should exceed physical (%.2f)", cv, cp)
	}
	if cv < 0.3 {
		t.Errorf("virtual hot bins hold only %.2f of accesses", cv)
	}
}

func TestFigure6Shape(t *testing.T) {
	s := Tiny()
	static := runProvisioned(s, provisionScheme{name: "static", design: "tpp", setup: staticSetup})
	virtio := runProvisioned(s, provisionScheme{name: "virtio", design: "tpp", setup: virtioSetup, fullCapacityNodes: true})
	demeterB := runProvisioned(s, provisionScheme{name: "demeter", design: "tpp", setup: demeterSetup, fullCapacityNodes: true})
	if virtio >= demeterB {
		t.Errorf("virtio balloon (%.3g) should underperform demeter balloon (%.3g)", virtio, demeterB)
	}
	if demeterB < static*0.85 {
		t.Errorf("demeter balloon (%.3g) should be comparable to static (%.3g)", demeterB, static)
	}
}

func TestFigure12Shape(t *testing.T) {
	s := Tiny()
	p99 := map[string]float64{}
	for _, d := range []string{"demeter", "tpp"} {
		r := s.RunCluster(d, 3, func(vmID int) workload.Workload {
			return s.NewApp("silo", uint64(vmID)+1)
		}, clusterOptions{txnLatency: true})
		if r.TxnHist.Count() == 0 {
			t.Fatalf("%s: no transactions recorded", d)
		}
		p99[d] = r.TxnHist.Quantile(0.99)
	}
	if p99["demeter"] >= p99["tpp"] {
		t.Errorf("Demeter p99 (%.0fns) should undercut TPP's (%.0fns)", p99["demeter"], p99["tpp"])
	}
}

func TestRunClusterDeterminism(t *testing.T) {
	s := Tiny()
	run := func() float64 {
		return s.splitScale(2).RunCluster("demeter", 2, s.gupsSplit(2), clusterOptions{}).AvgRuntime()
	}
	if run() != run() {
		t.Fatal("cluster runs are not reproducible")
	}
}

func TestRealWorkloadClusterRuns(t *testing.T) {
	// One representative app under two designs on both tiers; the full
	// matrix belongs to the bench harness.
	s := Tiny()
	for _, tier := range []string{"pmem", "cxl"} {
		for _, d := range []string{"demeter", "nomad"} {
			r := s.RunCluster(d, 2, func(vmID int) workload.Workload {
				return s.NewApp("xsbench", uint64(vmID)+1)
			}, clusterOptions{tier: tier})
			if r.AvgRuntime() <= 0 {
				t.Fatalf("%s/%s: bad runtime", tier, d)
			}
		}
	}
}

func TestReportsRenderAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("report rendering is slow")
	}
	s := Tiny()
	// Smoke-render the cheap reports end to end.
	for _, id := range []string{"table2", "figure4"} {
		e, _ := Get(id)
		out := e.Run(s)
		if !strings.Contains(out, ":") || len(out) < 80 {
			t.Errorf("%s: implausible report:\n%s", id, out)
		}
	}
}

func TestFigure7ReportTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-design cluster run")
	}
	out := Figure7(Tiny())
	for _, d := range GuestDesigns {
		if !strings.Contains(out, d) {
			t.Errorf("figure7 report missing %q", d)
		}
	}
	if !strings.Contains(out, "Track") {
		t.Error("missing breakdown columns")
	}
}

func TestAblationReportsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster runs")
	}
	for _, id := range []string{"ablation-granularity", "ablation-damon"} {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		out := e.Run(Tiny())
		if len(out) < 100 {
			t.Errorf("%s: implausible report:\n%s", id, out)
		}
	}
}
