package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID matches the paper ("table1", "figure10", ...).
	ID string
	// Title summarizes what the paper shows.
	Title string
	// Run executes at the given scale and returns the text report.
	Run func(s Scale) string
}

//lint:allow crossshard seeded by package init via register and read-only afterwards
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[strings.ToLower(id)]
	return e, ok
}

// All returns every experiment sorted by id (tables first, then figures
// in numeric order).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

func orderKey(id string) string {
	// "table1" -> "0table01", "figure10" -> "1figure10"; pads the number
	// so figure2 sorts before figure10.
	var prefix byte = '1'
	if strings.HasPrefix(id, "table") {
		prefix = '0'
	}
	num := strings.TrimLeft(id, "abcdefghijklmnopqrstuvwxyz")
	for len(num) < 2 {
		num = "0" + num
	}
	return string(prefix) + strings.TrimRight(id, "0123456789") + num
}
