package experiments

import (
	"strings"
	"testing"
)

func TestChaosInvariantsHold(t *testing.T) {
	s := Tiny()
	cfg := DefaultChaosConfig()
	cfg.VMs = 2
	report, err := RunChaos(s, cfg)
	if err != nil {
		t.Fatalf("chaos failed: %v\n%s", err, report)
	}
	if !strings.Contains(report, "invariants: OK") {
		t.Fatalf("report missing invariant confirmation:\n%s", report)
	}
	// Faults must actually have fired at the non-zero rungs.
	if !strings.Contains(report, "rung x4") {
		t.Fatalf("ladder did not reach x4:\n%s", report)
	}
}

func TestChaosSameSeedBitIdentical(t *testing.T) {
	s := Tiny()
	cfg := DefaultChaosConfig()
	cfg.VMs = 2
	cfg.Ladder = []float64{0, 2}
	r1, err1 := RunChaos(s, cfg)
	r2, err2 := RunChaos(s, cfg)
	if err1 != nil || err2 != nil {
		t.Fatalf("chaos failed: %v / %v", err1, err2)
	}
	if r1 != r2 {
		t.Fatalf("same-seed chaos runs differ:\n--- run 1:\n%s\n--- run 2:\n%s", r1, r2)
	}
}
