module demeter

go 1.22
