package demeter_test

import (
	"sync"
	"testing"

	"demeter/internal/experiments"
)

// Each benchmark regenerates one of the paper's tables or figures at the
// quick scale and prints the report once, so
//
//	go test -bench=. -benchmem ./...
//
// produces the full reproduction record. Experiments take seconds to
// minutes each; the default benchtime runs each exactly once.

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	s := experiments.Quick()
	var out string
	for i := 0; i < b.N; i++ {
		out = e.Run(s)
	}
	// Report outside the timed region, through the framework so output
	// stays attached to its benchmark instead of interleaving mid-run;
	// once per experiment across the size ramp-up reruns.
	b.StopTimer()
	if _, done := printOnce.LoadOrStore(id, true); !done {
		b.Logf("\n===== %s: %s =====\n%s", e.ID, e.Title, out)
	}
}

// The paper's evaluation tables and figures.

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFigure2(b *testing.B)  { benchExperiment(b, "figure2") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "figure4") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "figure6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "figure7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "figure8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "figure9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "figure10") }
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, "figure11") }
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, "figure12") }

// Ablations of the design choices DESIGN.md calls out.

func BenchmarkAblationDraining(b *testing.B)     { benchExperiment(b, "ablation-draining") }
func BenchmarkAblationAddressSpace(b *testing.B) { benchExperiment(b, "ablation-translation") }
func BenchmarkAblationRelocation(b *testing.B)   { benchExperiment(b, "ablation-relocation") }
func BenchmarkAblationEvent(b *testing.B)        { benchExperiment(b, "ablation-event") }

// BenchmarkAblationBalloon reuses the Figure 6 provisioning comparison,
// which is exactly the double-vs-single balloon ablation.
func BenchmarkAblationBalloon(b *testing.B) { benchExperiment(b, "figure6") }

func BenchmarkAblationPML(b *testing.B)         { benchExperiment(b, "ablation-pml") }
func BenchmarkAblationDAMON(b *testing.B)       { benchExperiment(b, "ablation-damon") }
func BenchmarkAblationGranularity(b *testing.B) { benchExperiment(b, "ablation-granularity") }
