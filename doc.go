// Package demeter is a reproduction of "Demeter: A Scalable and Elastic
// Tiered Memory Solution for Virtualized Cloud via Guest Delegation"
// (SOSP 2025) as a deterministic discrete-event simulation.
//
// The paper's system is a Linux kernel module plus Cloud Hypervisor
// patches that delegate tiered memory management (TMM) to guest VMs —
// classifying hotness over guest-virtual-address ranges fed by
// EPT-friendly PEBS samples — while the hypervisor handles only elastic
// provisioning through a per-NUMA-node "double balloon". Reproducing that
// requires PEBS hardware, nested paging and PMEM none of which a Go
// process can reach, so this repository builds the closest synthetic
// equivalent: a simulated virtualized machine (page tables with A/D bits,
// TLB with single/full invalidation, PEBS sampling, virtio transports,
// tiered NUMA memory) on which Demeter and the baselines it is evaluated
// against (TPP, hypervisor-TPP, Memtis, Nomad) are implemented in full.
//
// Layout:
//
//   - internal/core — the paper's contribution: range-based classifier,
//     lock-free sample channel, balanced relocation, the Demeter policy.
//   - internal/{sim,mem,pagetable,tlb,pebs,virtio,guestos,hypervisor,
//     balloon,engine,workload} — the substrates.
//   - internal/tmm — baseline TMM designs.
//   - internal/experiments — one runner per table/figure of the paper.
//   - cmd/demeter-sim — CLI for the experiment harness.
//   - examples — runnable walkthroughs of the public pieces.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package demeter
